// Package schedule projects concretized model traces onto plant schedules:
// the timestamped command lists of the paper's Table 2 ("Delay(5)",
// "Load1.Track1Right", "Crane1.Move1Left", ...). A schedule is the
// intermediate form between a diagnostic trace and a synthesized control
// program; the projection drops the synchronizations that are irrelevant
// for plant control (the paper used gawk scripts for this step).
package schedule

import (
	"fmt"
	"strings"

	"guidedta/internal/mc"
	"guidedta/internal/plant"
)

// Line is one command of a schedule with its absolute issue time (in the
// concretizer's half time units).
type Line struct {
	Time int64
	Cmd  plant.Command
}

// Schedule is a timestamped command sequence for the plant.
type Schedule struct {
	Lines []Line
	// Horizon is the time of the last command (half units).
	Horizon int64
	// Batches is the number of batches scheduled.
	Batches int
}

// FromTrace projects a concretized trace onto the plant commands registered
// by the model builder. Transitions without a command (pure model
// bookkeeping such as move completions or recipe steps) are dropped,
// exactly like the paper's projection step.
func FromTrace(p *plant.Plant, steps []mc.ConcreteStep) Schedule {
	s := Schedule{Batches: p.NumBatches()}
	for _, st := range steps {
		emit := func(auto, edge int) {
			if auto < 0 {
				return
			}
			if cmd, ok := p.Command(auto, edge); ok {
				s.Lines = append(s.Lines, Line{Time: st.Time, Cmd: cmd})
				if st.Time > s.Horizon {
					s.Horizon = st.Time
				}
			}
		}
		emit(st.Trans.A1, st.Trans.E1)
		emit(st.Trans.A2, st.Trans.E2)
	}
	return s
}

// Format renders the schedule in the paper's Table 2 style: a Delay(d) line
// whenever time advances, then the commands issued at that instant.
// Delays are printed in model time units (halves rendered as ".5").
func (s Schedule) Format() string {
	var sb strings.Builder
	var now int64
	for _, l := range s.Lines {
		if d := l.Time - now; d > 0 {
			fmt.Fprintf(&sb, "Delay(%s)\n", mc.TimeString(d))
			now = l.Time
		}
		fmt.Fprintf(&sb, "%s\n", l.Cmd)
	}
	return sb.String()
}

// FormatAnnotated renders the schedule with absolute timestamps, useful for
// debugging and for EXPERIMENTS.md listings.
func (s Schedule) FormatAnnotated() string {
	var sb strings.Builder
	for _, l := range s.Lines {
		fmt.Fprintf(&sb, "@%s\t%s\n", mc.TimeString(l.Time), l.Cmd)
	}
	return sb.String()
}

// CommandsForUnit filters the schedule to one unit's commands.
func (s Schedule) CommandsForUnit(unit string) []Line {
	var out []Line
	for _, l := range s.Lines {
		if l.Cmd.Unit == unit {
			out = append(out, l)
		}
	}
	return out
}

// Units lists the distinct units addressed by the schedule, in first-use
// order.
func (s Schedule) Units() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range s.Lines {
		if !seen[l.Cmd.Unit] {
			seen[l.Cmd.Unit] = true
			out = append(out, l.Cmd.Unit)
		}
	}
	return out
}

// Validate performs structural sanity checks a valid plant schedule must
// satisfy: monotone timestamps and, per batch, machines switched on/off
// alternately. It returns nil for the empty schedule.
func (s Schedule) Validate() error {
	var last int64
	on := make(map[string]string) // unit -> machine currently on
	for i, l := range s.Lines {
		if l.Time < last {
			return fmt.Errorf("schedule: line %d: time goes backwards (%d < %d)", i, l.Time, last)
		}
		last = l.Time
		act := l.Cmd.Action
		switch {
		case strings.HasPrefix(act, "Machine") && strings.HasSuffix(act, "On"):
			if prev, busy := on[l.Cmd.Unit]; busy {
				return fmt.Errorf("schedule: line %d: %s turned on while %s is on", i, act, prev)
			}
			on[l.Cmd.Unit] = act
		case strings.HasPrefix(act, "Machine") && strings.HasSuffix(act, "Off"):
			if _, busy := on[l.Cmd.Unit]; !busy {
				return fmt.Errorf("schedule: line %d: %s without a matching on", i, act)
			}
			delete(on, l.Cmd.Unit)
		}
	}
	if len(on) > 0 {
		return fmt.Errorf("schedule: machines left on at end: %v", on)
	}
	return nil
}
