package schedule

import (
	"strings"
	"testing"

	"guidedta/internal/mc"
	"guidedta/internal/plant"
)

// traceFor builds a 2-batch guided plant and returns its concretized
// schedule ingredients.
func traceFor(t *testing.T) (*plant.Plant, []mc.ConcreteStep) {
	t.Helper()
	p, err := plant.Build(plant.Config{
		Qualities: []plant.Quality{plant.Q1, plant.Q2},
		Guides:    plant.AllGuides,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := mc.DefaultOptions(mc.DFS)
	opts.Observer = &mc.FuncObserver{Priority: p.Priority}
	res, err := mc.Explore(p.Sys, p.Goal, opts)
	if err != nil || !res.Found {
		t.Fatalf("explore: %v found=%v", err, res.Found)
	}
	steps, err := mc.Concretize(p.Sys, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return p, steps
}

func TestFromTraceProjectsCommands(t *testing.T) {
	p, steps := traceFor(t)
	s := FromTrace(p, steps)
	if len(s.Lines) == 0 {
		t.Fatal("empty schedule")
	}
	if s.Batches != 2 {
		t.Errorf("Batches = %d", s.Batches)
	}
	// The projection keeps strictly fewer events than the raw trace
	// (bookkeeping transitions are dropped), and times stay monotone.
	if len(s.Lines) >= len(steps)*2 {
		t.Errorf("projection did not drop anything: %d lines from %d steps", len(s.Lines), len(steps))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Horizon <= 0 {
		t.Error("horizon not set")
	}
}

func TestFormatLooksLikeTable2(t *testing.T) {
	p, steps := traceFor(t)
	s := FromTrace(p, steps)
	out := s.Format()
	for _, want := range []string{"Delay(", "Load0.", "Crane1.", "Caster.CastLoad0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 style output missing %q:\n%s", want, out)
		}
	}
	// A Delay line never starts the schedule at time zero twice in a row.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if strings.HasPrefix(lines[i], "Delay(") && strings.HasPrefix(lines[i-1], "Delay(") {
			t.Error("consecutive Delay lines")
		}
	}
	ann := s.FormatAnnotated()
	if !strings.Contains(ann, "@0\t") {
		t.Errorf("annotated format missing timestamps:\n%s", ann)
	}
}

func TestUnitsAndFiltering(t *testing.T) {
	p, steps := traceFor(t)
	s := FromTrace(p, steps)
	units := s.Units()
	has := func(u string) bool {
		for _, x := range units {
			if x == u {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"Load0", "Load1", "Crane1", "Crane2", "Caster"} {
		if !has(want) {
			t.Errorf("unit %s missing from %v", want, units)
		}
	}
	only := s.CommandsForUnit("Crane2")
	if len(only) == 0 {
		t.Fatal("no Crane2 commands")
	}
	for _, l := range only {
		if l.Cmd.Unit != "Crane2" {
			t.Errorf("filter leaked %v", l.Cmd)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p, steps := traceFor(t)
	s := FromTrace(p, steps)

	// Reversed time.
	bad := Schedule{Lines: []Line{{Time: 10, Cmd: plant.Command{Unit: "X", Action: "Y"}}, {Time: 5, Cmd: plant.Command{Unit: "X", Action: "Y"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("reversed time accepted")
	}

	// Double machine-on.
	var on Line
	for _, l := range s.Lines {
		if strings.HasSuffix(l.Cmd.Action, "On") && strings.HasPrefix(l.Cmd.Action, "Machine") {
			on = l
			break
		}
	}
	if on.Cmd.Unit == "" {
		t.Fatal("no machine-on line found")
	}
	dup := Schedule{Lines: []Line{on, {Time: on.Time + 1, Cmd: on.Cmd}}}
	if err := dup.Validate(); err == nil {
		t.Error("double machine-on accepted")
	}

	// On without off at end.
	single := Schedule{Lines: []Line{on}}
	if err := single.Validate(); err == nil {
		t.Error("machine left on accepted")
	}

	// Off without on.
	off := on
	off.Cmd.Action = strings.Replace(on.Cmd.Action, "On", "Off", 1)
	orphan := Schedule{Lines: []Line{off}}
	if err := orphan.Validate(); err == nil {
		t.Error("orphan machine-off accepted")
	}

	// The empty schedule is trivially valid.
	if err := (Schedule{}).Validate(); err != nil {
		t.Errorf("empty schedule rejected: %v", err)
	}
}

func TestGantt(t *testing.T) {
	p, steps := traceFor(t)
	s := FromTrace(p, steps)
	g := s.Gantt(2)
	if !strings.Contains(g, "Caster") || !strings.Contains(g, "Load0") || !strings.Contains(g, "Crane1") {
		t.Errorf("gantt missing rows:\n%s", g)
	}
	if !strings.Contains(g, "|") {
		t.Errorf("gantt has no command marks:\n%s", g)
	}
	if !strings.Contains(g, "=") {
		t.Errorf("gantt has no running spans (machine treatments should fill):\n%s", g)
	}
	if (Schedule{}).Gantt(1) != "(empty schedule)\n" {
		t.Error("empty schedule rendering")
	}
	// Degenerate scale falls back to 1.
	if g0 := s.Gantt(0); !strings.Contains(g0, "Caster") {
		t.Error("scale 0 not handled")
	}
}
