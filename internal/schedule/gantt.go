package schedule

import (
	"fmt"
	"sort"
	"strings"

	"guidedta/internal/mc"
)

// Gantt renders the schedule as an ASCII Gantt chart, one row per unit,
// one column per `scale` model time units. Instant commands mark a `|`;
// the span between a Machine…On and its Machine…Off is filled, as is the
// span between a Caster.CastLoad and the matching EjectLoad.
func (s Schedule) Gantt(scale int64) string {
	if len(s.Lines) == 0 {
		return "(empty schedule)\n"
	}
	if scale <= 0 {
		scale = 1
	}
	step := scale * mc.Half
	width := int(s.Horizon/step) + 2

	type row struct {
		name  string
		cells []byte
	}
	rows := map[string]*row{}
	var order []string
	get := func(name string) *row {
		if r, ok := rows[name]; ok {
			return r
		}
		r := &row{name: name, cells: []byte(strings.Repeat(".", width))}
		rows[name] = r
		order = append(order, name)
		return r
	}
	col := func(t int64) int {
		c := int(t / step)
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Track open spans per unit (machine treatments, casts).
	open := map[string]int64{}
	spanKey := func(l Line) (string, bool, bool) {
		act := l.Cmd.Action
		switch {
		case strings.HasPrefix(act, "Machine") && strings.HasSuffix(act, "On"):
			return fmt.Sprintf("%s/m%d", l.Cmd.Unit, l.Cmd.Arg), true, false
		case strings.HasPrefix(act, "Machine") && strings.HasSuffix(act, "Off"):
			return fmt.Sprintf("%s/m%d", l.Cmd.Unit, l.Cmd.Arg), false, true
		case strings.HasPrefix(act, "CastLoad"):
			return "Caster", true, false
		case strings.HasPrefix(act, "EjectLoad"):
			return "Caster", false, true
		}
		return "", false, false
	}

	for _, l := range s.Lines {
		r := get(l.Cmd.Unit)
		c := col(l.Time)
		if r.cells[c] == '.' {
			r.cells[c] = '|'
		} else {
			r.cells[c] = '+'
		}
		if key, opens, closes := spanKey(l); key != "" {
			switch {
			case opens:
				open[key] = l.Time
			case closes:
				if from, ok := open[key]; ok {
					target := get(strings.SplitN(key, "/", 2)[0])
					for cc := col(from) + 1; cc < col(l.Time); cc++ {
						if target.cells[cc] == '.' {
							target.cells[cc] = '='
						}
					}
					delete(open, key)
				}
			}
		}
	}

	sort.Strings(order)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s 0%s%s\n", "", strings.Repeat(" ", width-len(fmt.Sprint(s.Horizon/mc.Half))), mc.TimeString(s.Horizon))
	for _, name := range order {
		fmt.Fprintf(&sb, "%-8s %s\n", name, rows[name].cells)
	}
	fmt.Fprintf(&sb, "(one column = %d time unit(s); '|' command, '=' running, '+' coincident)\n", scale)
	return sb.String()
}
