package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"guidedta/internal/mc"
	"guidedta/internal/ta"
	"guidedta/internal/tadsl"
)

// Report is the machine-readable run report behind the -report flag: one
// invocation of a tool with one or more searches (guidedmc runs one,
// table1 one per cell). Its JSON form is validated against the checked-in
// report.schema.json by the cliutil tests and the CI smoke job.
type Report struct {
	Tool      string       `json:"tool"`
	Args      []string     `json:"args"`
	Started   string       `json:"started"`
	GoVersion string       `json:"go_version"`
	OS        string       `json:"os"`
	Arch      string       `json:"arch"`
	NumCPU    int          `json:"num_cpu"`
	Runs      []*RunReport `json:"runs"`
}

// RunReport describes one search: the model identity, the query and
// options, and the outcome. Stats mirror mc.Stats field by field so the
// report numbers match the printed statistics exactly.
type RunReport struct {
	Name      string        `json:"name"`
	Model     *ModelInfo    `json:"model,omitempty"`
	Query     string        `json:"query"`
	Options   ReportOptions `json:"options"`
	Result    ReportResult  `json:"result"`
	Stats     ReportStats   `json:"stats"`
	Snapshots int           `json:"snapshots"`
}

// ModelInfo identifies the analyzed model: its size statistics plus a
// content hash of its canonical tadsl serialization, so two reports can be
// compared knowing whether they analyzed the very same model.
type ModelInfo struct {
	Name      string `json:"name"`
	Automata  int    `json:"automata"`
	Locations int    `json:"locations"`
	Edges     int    `json:"edges"`
	Clocks    int    `json:"clocks"`
	IntCells  int    `json:"int_cells"`
	Channels  int    `json:"channels"`
	SHA256    string `json:"sha256"`
}

// ReportOptions is the JSON projection of mc.Options.
type ReportOptions struct {
	Search         string  `json:"search"`
	HashBits       int     `json:"hash_bits"`
	Inclusion      bool    `json:"inclusion"`
	Compact        bool    `json:"compact"`
	ActiveClocks   bool    `json:"active_clocks"`
	Workers        int     `json:"workers"`
	MaxStates      int     `json:"max_states"`
	MaxMemoryBytes int64   `json:"max_memory_bytes"`
	TimeoutSeconds float64 `json:"timeout_seconds"`
}

// ReportResult is the verdict of one search.
type ReportResult struct {
	Found    bool   `json:"found"`
	Abort    string `json:"abort"`
	TraceLen int    `json:"trace_len"`
}

// ReportStats is the JSON projection of mc.Stats.
type ReportStats struct {
	StatesExplored  int     `json:"states_explored"`
	StatesStored    int     `json:"states_stored"`
	Transitions     int     `json:"transitions"`
	PeakWaiting     int     `json:"peak_waiting"`
	MaxDepth        int     `json:"max_depth"`
	Deadends        int     `json:"deadends"`
	DiscreteStates  int     `json:"discrete_states"`
	Evictions       int64   `json:"evictions"`
	Steals          int64   `json:"steals"`
	StoreBytes      int64   `json:"store_bytes"`
	MemBytes        int64   `json:"mem_bytes"`
	DurationSeconds float64 `json:"duration_seconds"`
	StatesPerSec    float64 `json:"states_per_sec"`
	BytesPerState   float64 `json:"bytes_per_state"`
}

// NewReport starts a report for one tool invocation, capturing the command
// line and the runtime environment.
func NewReport(tool string) *Report {
	return &Report{
		Tool:      tool,
		Args:      append([]string{}, os.Args[1:]...),
		Started:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Run appends a new named run and returns it for filling.
func (r *Report) Run(name string) *RunReport {
	rr := &RunReport{Name: name}
	r.Runs = append(r.Runs, rr)
	return rr
}

// Bytes renders the report as indented JSON.
func (r *Report) Bytes() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	data, err := r.Bytes()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("cliutil: writing report: %w", err)
	}
	return nil
}

// SetModel records the model identity (and, from goal, the query). Both
// arguments are optional; a model that cannot be serialized keeps an empty
// hash rather than failing the run.
func (rr *RunReport) SetModel(sys *ta.System, goal *mc.Goal) {
	if goal != nil {
		rr.Query = goal.String()
	}
	if sys == nil {
		return
	}
	st := sys.Stats()
	mi := &ModelInfo{
		Name:      sys.Name,
		Automata:  st.Automata,
		Locations: st.Locations,
		Edges:     st.Edges,
		Clocks:    st.Clocks,
		IntCells:  st.IntCells,
		Channels:  st.Channels,
	}
	if h, err := tadsl.Hash(sys, goal); err == nil {
		mi.SHA256 = h
	}
	rr.Model = mi
}

// SetOptions records the search configuration.
func (rr *RunReport) SetOptions(opts mc.Options) {
	rr.Options = ReportOptions{
		Search:         opts.Search.String(),
		HashBits:       opts.HashBits,
		Inclusion:      opts.Inclusion,
		Compact:        opts.Compact,
		ActiveClocks:   opts.ActiveClocks,
		Workers:        opts.Workers,
		MaxStates:      opts.MaxStates,
		MaxMemoryBytes: opts.MaxMemory,
		TimeoutSeconds: opts.Timeout.Seconds(),
	}
}

// SetResult records the outcome of a search. It is also what the
// Observer's Done hook calls, so manual filling is only needed when no
// observer was attached.
func (rr *RunReport) SetResult(res mc.Result) {
	rr.Result = ReportResult{
		Found:    res.Found,
		Abort:    string(res.Abort),
		TraceLen: len(res.Trace),
	}
	st := res.Stats
	rr.Stats = ReportStats{
		StatesExplored:  st.StatesExplored,
		StatesStored:    st.StatesStored,
		Transitions:     st.Transitions,
		PeakWaiting:     st.PeakWaiting,
		MaxDepth:        st.MaxDepth,
		Deadends:        st.Deadends,
		DiscreteStates:  st.DiscreteStates,
		Evictions:       st.Evictions,
		Steals:          st.Steals,
		StoreBytes:      st.StoreBytes,
		MemBytes:        st.MemBytes,
		DurationSeconds: st.Duration.Seconds(),
		BytesPerState:   st.BytesPerStoredState(),
	}
	if st.Duration > 0 {
		rr.Stats.StatesPerSec = float64(st.StatesExplored) / st.Duration.Seconds()
	}
}

// Observer returns the hook that fills the run from a search: it counts
// progress snapshots and records the final Result.
func (rr *RunReport) Observer() *mc.FuncObserver {
	return &mc.FuncObserver{
		OnSnapshot: func(mc.Snapshot) { rr.Snapshots++ },
		OnDone:     func(res mc.Result) { rr.SetResult(res) },
	}
}
