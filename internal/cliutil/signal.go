package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled by Ctrl-C (SIGINT) or SIGTERM,
// so an interactive interrupt lands as a clean mc.AbortCanceled — the
// search stops, statistics stay consistent, and the report still gets
// written. A second signal kills the process with Go's default behavior
// (stop is called on the first, restoring it).
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
