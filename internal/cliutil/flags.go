// Package cliutil is the shared command-line plumbing of the cmd/
// binaries: the common search-option flag block, the live -progress status
// line, the -report machine-readable run report (with its checked-in JSON
// schema), and signal-driven cancellation. It exists so the five binaries
// configure and observe the model checker identically instead of each
// re-growing its own flag block and stats printer.
package cliutil

import (
	"flag"
	"os"
	"strings"
	"time"

	"guidedta/internal/mc"
	"guidedta/internal/ta"
	"guidedta/internal/tadsl"
)

// SearchFlags holds the parsed values of the shared search flag block.
// Register it with AddSearchFlags and convert to engine options with
// Options after flag parsing.
type SearchFlags struct {
	Search      string
	HashBits    int
	NoInclusion bool
	NoActive    bool
	Compact     bool
	Workers     int
	MaxStates   int
	MaxMemoryMB int64
	Timeout     time.Duration
	Stats       bool
	// Progress enables the live status line (see ProgressObserver);
	// Report, when non-empty, is the path of the JSON run report.
	Progress      bool
	Report        string
	SnapshotEvery time.Duration
	// Checkpoint/CheckpointInterval/Resume configure durable search state
	// (mc.Options.Checkpoint): a checkpoint file, the periodic write
	// cadence, and whether to seed the run from an existing file.
	Checkpoint         string
	CheckpointInterval time.Duration
	Resume             bool
}

// AddSearchFlags registers the shared search flag block on fs, taking
// defaults from def (so each binary keeps its historical defaults, e.g.
// table1's larger hash table). Flags named in omit are skipped — table1
// omits "search" because its columns fix the order. Call Options after
// fs.Parse.
func AddSearchFlags(fs *flag.FlagSet, def mc.Options, omit ...string) *SearchFlags {
	skip := make(map[string]bool, len(omit))
	for _, name := range omit {
		skip[name] = true
	}
	f := &SearchFlags{Search: strings.ToLower(def.Search.String())}
	add := func(name string, register func()) {
		if !skip[name] {
			register()
		}
	}
	workers := def.Workers
	if workers < 1 {
		workers = 1
	}
	add("search", func() {
		fs.StringVar(&f.Search, "search", f.Search, "search order: bfs, dfs, bsh, or besttime")
	})
	add("hashbits", func() {
		fs.IntVar(&f.HashBits, "hashbits", def.HashBits, "bit-state hash table size (2^n bits, bsh only)")
	})
	add("no-inclusion", func() {
		fs.BoolVar(&f.NoInclusion, "no-inclusion", !def.Inclusion, "disable zone inclusion checking")
	})
	add("no-active", func() {
		fs.BoolVar(&f.NoActive, "no-active", !def.ActiveClocks, "disable (in-)active clock reduction")
	})
	add("compact", func() {
		fs.BoolVar(&f.Compact, "compact", def.Compact, "store passed zones in minimal-constraint form (lower memory, same answers; on by default, -compact=false restores the full-DBM store)")
	})
	add("workers", func() {
		fs.IntVar(&f.Workers, "workers", workers, "parallel search workers (bfs/dfs only; 1 = sequential)")
	})
	add("max-states", func() {
		fs.IntVar(&f.MaxStates, "max-states", def.MaxStates, "abort after exploring this many states (0 = unlimited)")
	})
	add("max-memory", func() {
		fs.Int64Var(&f.MaxMemoryMB, "max-memory", def.MaxMemory>>20, "abort when estimated search memory exceeds this many MB (0 = unlimited)")
	})
	add("timeout", func() {
		fs.DurationVar(&f.Timeout, "timeout", def.Timeout, "abort after this wall-clock duration (0 = unlimited)")
	})
	add("stats", func() {
		fs.BoolVar(&f.Stats, "stats", false, "print detailed search statistics (enables profiling)")
	})
	add("progress", func() {
		fs.BoolVar(&f.Progress, "progress", false, "print a live search progress line to stderr")
	})
	add("report", func() {
		fs.StringVar(&f.Report, "report", "", "write a machine-readable JSON run report to this file")
	})
	add("snapshot-every", func() {
		fs.DurationVar(&f.SnapshotEvery, "snapshot-every", 500*time.Millisecond, "progress snapshot interval (used by -progress and -report)")
	})
	add("checkpoint", func() {
		fs.StringVar(&f.Checkpoint, "checkpoint", "", "write a resumable search checkpoint to this file on abort (timeout, limits, ^C) and, with -checkpoint-interval, periodically")
	})
	add("checkpoint-interval", func() {
		fs.DurationVar(&f.CheckpointInterval, "checkpoint-interval", 0, "periodic checkpoint cadence (0 = abort-time only; requires -checkpoint)")
	})
	add("resume", func() {
		fs.BoolVar(&f.Resume, "resume", false, "seed the search from the -checkpoint file when it exists (same model and options required)")
	})
	return f
}

// ParseSearch maps a flag value to a search order. It is a thin alias of
// mc.ParseSearchOrder, kept so the flag block stays self-contained.
func ParseSearch(s string) (mc.SearchOrder, error) {
	return mc.ParseSearchOrder(s)
}

// Options converts the parsed flag block to engine options (profiling is
// enabled when detailed stats or a report were requested, so both have the
// full counters).
func (f *SearchFlags) Options() (mc.Options, error) {
	order, err := ParseSearch(f.Search)
	if err != nil {
		return mc.Options{}, err
	}
	opts := mc.DefaultOptions(order)
	opts.HashBits = f.HashBits
	opts.Inclusion = !f.NoInclusion
	opts.ActiveClocks = !f.NoActive
	opts.Compact = f.Compact
	opts.Workers = f.Workers
	opts.MaxStates = f.MaxStates
	opts.MaxMemory = f.MaxMemoryMB << 20
	opts.Timeout = f.Timeout
	opts.Profile = f.Stats || f.Report != ""
	opts.Checkpoint = mc.CheckpointOptions{
		Path:     f.Checkpoint,
		Interval: f.CheckpointInterval,
		Resume:   f.Resume,
	}
	return opts, nil
}

// Instrument attaches the observability the flags requested — the live
// progress line and/or the run report — to opts, composing with any
// observer already installed there (a guiding observer keeps its
// priority). It returns the report to write after the run, or nil when
// -report was not given. name labels the run inside the report; sys and
// goal (both optional) identify the model.
func (f *SearchFlags) Instrument(tool, name string, opts *mc.Options, sys *ta.System, goal *mc.Goal) *Report {
	if opts.Checkpoint.Path != "" && opts.Checkpoint.ModelSHA == "" && sys != nil && goal != nil {
		// Stamp the model digest into checkpoints so a resume against a
		// different model fails loudly instead of exploring garbage.
		if sha, err := tadsl.Hash(sys, goal); err == nil {
			opts.Checkpoint.ModelSHA = sha
		}
	}
	var obs []mc.Observer
	var rep *Report
	if f.Progress {
		obs = append(obs, ProgressObserver(os.Stderr, tool))
	}
	if f.Report != "" {
		rep = NewReport(tool)
		run := rep.Run(name)
		run.SetModel(sys, goal)
		run.SetOptions(*opts)
		obs = append(obs, run.Observer())
	}
	if len(obs) > 0 {
		if opts.SnapshotEvery == 0 {
			opts.SnapshotEvery = f.SnapshotEvery
		}
		opts.Observer = mc.Observers(append(obs, opts.Observer)...)
	}
	return rep
}

// WriteReport writes rep to the -report path when both are set; it is a
// no-op otherwise, so callers can defer it unconditionally.
func (f *SearchFlags) WriteReport(rep *Report) error {
	if rep == nil || f.Report == "" {
		return nil
	}
	return rep.WriteFile(f.Report)
}
