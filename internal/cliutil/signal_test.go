package cliutil

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestSignalContextCancelsOnSIGTERM delivers a real SIGTERM to the test
// process and checks the context cancels — the exact path mcserved's
// graceful drain hangs off. SignalContext registers the handler before
// returning, so the self-signal cannot race registration (it could only
// race Go's default disposition, which would kill the test process).
func TestSignalContextCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already done: %v", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not canceled within 5s of SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// TestSignalContextStop: calling the returned stop cancels the context
// (the deferred-cleanup path every cmd uses) and is idempotent.
func TestSignalContextStop(t *testing.T) {
	ctx, stop := SignalContext()
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("context not canceled by stop")
	}
	stop() // second call must be a no-op
}
