package cliutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"guidedta/internal/mc"
	"guidedta/internal/ta"
)

func TestSearchFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddSearchFlags(fs, mc.DefaultOptions(mc.DFS))
	err := fs.Parse([]string{
		"-search", "bfs", "-workers", "4", "-compact", "-max-memory", "256",
		"-max-states", "1000", "-timeout", "2s", "-no-active", "-stats",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Search != mc.BFS || opts.Workers != 4 || !opts.Compact {
		t.Errorf("search/workers/compact not carried: %+v", opts)
	}
	if opts.MaxMemory != 256<<20 {
		t.Errorf("MaxMemory = %d, want 256MB", opts.MaxMemory)
	}
	if opts.MaxStates != 1000 || opts.Timeout != 2*time.Second {
		t.Errorf("limits not carried: %+v", opts)
	}
	if opts.ActiveClocks || !opts.Inclusion {
		t.Errorf("toggles not carried: active=%v inclusion=%v", opts.ActiveClocks, opts.Inclusion)
	}
	if !opts.Profile {
		t.Error("-stats should enable profiling")
	}
}

func TestSearchFlagsDefaultsAndOmit(t *testing.T) {
	def := mc.DefaultOptions(mc.BFS)
	def.HashBits = 23
	def.MaxStates = 3_000_000
	def.MaxMemory = 2048 << 20
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddSearchFlags(fs, def, "search")
	if fs.Lookup("search") != nil {
		t.Error("omitted flag was still registered")
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Search != mc.BFS {
		t.Errorf("default search = %v, want BFS", opts.Search)
	}
	if opts.HashBits != 23 || opts.MaxStates != 3_000_000 || opts.MaxMemory != 2048<<20 {
		t.Errorf("caller defaults not kept: %+v", opts)
	}
}

func TestSearchFlagsBadOrder(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddSearchFlags(fs, mc.DefaultOptions(mc.DFS))
	if err := fs.Parse([]string{"-search", "astar"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Options(); err == nil {
		t.Error("unknown search order should error")
	}
}

// reportModel is a tiny two-location model whose exhaustive search is
// instant but still produces every stat the report records.
func reportModel(t *testing.T) (*ta.System, mc.Goal) {
	t.Helper()
	s := ta.NewSystem("tiny")
	x := s.AddClock("x")
	a := s.AddAutomaton("A")
	l0 := a.AddLocation("l0", ta.Normal)
	l1 := a.AddLocation("l1", ta.Normal)
	pit := a.AddLocation("pit", ta.Normal)
	a.SetInit(l0)
	a.Edge(l0, l1).When(ta.GE(x, 1)).Done()
	return s, mc.Goal{Desc: "unreachable pit", Locs: []mc.LocRequirement{{Automaton: 0, Location: pit}}}
}

// TestReportMatchesSchemaAndStats runs a real search through the report
// observer and checks that the rendered JSON validates against the
// checked-in schema and mirrors the returned Stats exactly.
func TestReportMatchesSchemaAndStats(t *testing.T) {
	sys, goal := reportModel(t)
	rep := NewReport("cliutil-test")
	run := rep.Run("tiny")
	run.SetModel(sys, &goal)
	opts := mc.DefaultOptions(mc.BFS)
	opts.SnapshotEvery = time.Millisecond
	opts.Observer = run.Observer()
	run.SetOptions(opts)
	res, err := mc.Explore(sys, goal, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("report does not validate against its schema: %v\n%s", err, data)
	}
	if run.Stats.StatesExplored != res.Stats.StatesExplored ||
		run.Stats.StatesStored != res.Stats.StatesStored ||
		run.Stats.PeakWaiting != res.Stats.PeakWaiting ||
		run.Stats.MemBytes != res.Stats.MemBytes {
		t.Errorf("report stats %+v do not mirror result stats %+v", run.Stats, res.Stats)
	}
	if run.Result.Found || run.Result.Abort != "" {
		t.Errorf("result block wrong: %+v", run.Result)
	}
	if run.Snapshots < 1 {
		t.Error("no snapshots counted (the final snapshot alone should give 1)")
	}
	if run.Model == nil || run.Model.SHA256 == "" {
		t.Fatal("model identity missing")
	}
	// The hash is a function of the model's canonical serialization:
	// rebuilding the same model gives the same identity.
	sys2, goal2 := reportModel(t)
	run2 := &RunReport{}
	run2.SetModel(sys2, &goal2)
	if run2.Model.SHA256 != run.Model.SHA256 {
		t.Error("identical models got different hashes")
	}
}

func TestValidateJSONRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"missing-required", `{"tool": "x"}`},
		{"wrong-type", `{"tool": 7, "args": [], "started": "s", "go_version": "g", "os": "l", "arch": "a", "num_cpu": 1, "runs": []}`},
		{"bad-run", `{"tool": "x", "args": [], "started": "s", "go_version": "g", "os": "l", "arch": "a", "num_cpu": 1, "runs": [{"name": "r"}]}`},
		{"not-json", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateReport([]byte(tc.doc)); err == nil {
				t.Error("invalid document validated")
			}
		})
	}
}

// TestReportFileAgainstSchema validates an externally produced report file
// named by REPORT_FILE — the CI smoke job runs guidedmc -report and then
// invokes exactly this test against the output. Without the variable the
// test is skipped.
func TestReportFileAgainstSchema(t *testing.T) {
	path := os.Getenv("REPORT_FILE")
	if path == "" {
		t.Skip("REPORT_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("%s does not validate: %v", path, err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("report has no runs")
	}
	for _, run := range rep.Runs {
		if run.Stats.StatesExplored <= 0 {
			t.Errorf("run %q explored no states", run.Name)
		}
	}
}

func TestProgressObserver(t *testing.T) {
	var buf bytes.Buffer
	obs := ProgressObserver(&buf, "testtool")
	obs.Snapshot(mc.Snapshot{Elapsed: time.Second, StatesExplored: 123456, StatesPerSec: 4567, Waiting: 89, MemBytes: 5 << 20})
	obs.Snapshot(mc.Snapshot{Elapsed: 2 * time.Second, StatesExplored: 250000, Final: true})
	out := buf.String()
	if !strings.Contains(out, "testtool") || !strings.Contains(out, "123.5k") {
		t.Errorf("progress line missing content: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("final snapshot did not terminate the line")
	}
	if strings.Count(out, "\r") != 2 {
		t.Errorf("expected two carriage returns, got %q", out)
	}
	if v, d, s := obs.OnVisit, obs.OnDeadend, obs.OnSnapshot; v != nil || d != nil || s == nil {
		t.Error("progress observer should listen to snapshots only")
	}
}

func TestInstrument(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddSearchFlags(fs, mc.DefaultOptions(mc.BFS))
	if err := fs.Parse([]string{"-report", dir + "/run.json", "-snapshot-every", "1ms"}); err != nil {
		t.Fatal(err)
	}
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	sys, goal := reportModel(t)
	prio := func(mc.Transition) int { return 1 }
	opts.Observer = &mc.FuncObserver{Priority: prio}
	rep := f.Instrument("testtool", "tiny", &opts, sys, &goal)
	if rep == nil {
		t.Fatal("-report should produce a report")
	}
	if opts.SnapshotEvery != time.Millisecond {
		t.Errorf("SnapshotEvery = %v, want 1ms", opts.SnapshotEvery)
	}
	if mc.PriorityOf(opts.Observer) == nil {
		t.Error("instrumenting dropped the caller's priority")
	}
	if _, err := mc.Explore(sys, goal, opts); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteReport(rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/run.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("written report invalid: %v", err)
	}
}
