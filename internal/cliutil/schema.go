package cliutil

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
)

// ReportSchema is the checked-in JSON schema (a small, self-validated
// subset of JSON Schema) that -report files must conform to; CI runs
// guidedmc -report and validates the output against it.
//
//go:embed report.schema.json
var ReportSchema []byte

// ValidateReport checks a rendered report against ReportSchema.
func ValidateReport(doc []byte) error { return ValidateJSON(ReportSchema, doc) }

// ValidateJSON validates doc against a schema written in the subset of
// JSON Schema this package implements: "type" (object, array, string,
// number, integer, boolean, null), "properties", "required", and "items".
// Unknown schema keywords are ignored, unknown document fields allowed —
// the schema pins the report's shape, not its every extension.
func ValidateJSON(schema, doc []byte) error {
	var s any
	if err := json.Unmarshal(schema, &s); err != nil {
		return fmt.Errorf("cliutil: bad schema: %w", err)
	}
	root, ok := s.(map[string]any)
	if !ok {
		return fmt.Errorf("cliutil: schema root is not an object")
	}
	var d any
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("cliutil: document is not valid JSON: %w", err)
	}
	return validateValue("$", root, d)
}

func validateValue(path string, schema map[string]any, v any) error {
	if t, ok := schema["type"].(string); ok {
		if err := checkType(path, t, v); err != nil {
			return err
		}
	}
	if req, ok := schema["required"].([]any); ok {
		obj, _ := v.(map[string]any)
		for _, r := range req {
			name, _ := r.(string)
			if _, present := obj[name]; !present {
				return fmt.Errorf("%s: missing required field %q", path, name)
			}
		}
	}
	if props, ok := schema["properties"].(map[string]any); ok {
		if obj, isObj := v.(map[string]any); isObj {
			for name, sub := range props {
				subSchema, isMap := sub.(map[string]any)
				if !isMap {
					return fmt.Errorf("%s.%s: schema property is not an object", path, name)
				}
				if val, present := obj[name]; present {
					if err := validateValue(path+"."+name, subSchema, val); err != nil {
						return err
					}
				}
			}
		}
	}
	if items, ok := schema["items"].(map[string]any); ok {
		if arr, isArr := v.([]any); isArr {
			for i, el := range arr {
				if err := validateValue(fmt.Sprintf("%s[%d]", path, i), items, el); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(path, want string, v any) error {
	ok := false
	switch want {
	case "object":
		_, ok = v.(map[string]any)
	case "array":
		_, ok = v.([]any)
	case "string":
		_, ok = v.(string)
	case "boolean":
		_, ok = v.(bool)
	case "number":
		_, ok = v.(float64)
	case "integer":
		f, isNum := v.(float64)
		ok = isNum && f == math.Trunc(f)
	case "null":
		ok = v == nil
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, want)
	}
	if !ok {
		return fmt.Errorf("%s: expected %s, got %T", path, want, v)
	}
	return nil
}
