package cliutil

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"guidedta/internal/mc"
)

// ProgressObserver returns an observer rendering a live one-line status to
// w (conventionally stderr) from each progress snapshot, rewriting the
// line in place with \r and finishing it with a newline on the final
// snapshot. It is exposed as a *mc.FuncObserver so the engine sees that
// only snapshots are listened to and keeps per-state events free.
func ProgressObserver(w io.Writer, tool string) *mc.FuncObserver {
	var mu sync.Mutex
	prevLen := 0
	return &mc.FuncObserver{
		OnSnapshot: func(s mc.Snapshot) {
			mu.Lock()
			defer mu.Unlock()
			line := fmt.Sprintf("[%s] %6.1fs  explored %s (%s/s)  waiting %s  stored %s  mem %s",
				tool, s.Elapsed.Seconds(),
				countString(int64(s.StatesExplored)), countString(int64(s.StatesPerSec)),
				countString(int64(s.Waiting)), countString(int64(s.StatesStored)),
				byteString(s.MemBytes))
			if s.Steals > 0 {
				line += fmt.Sprintf("  steals %s", countString(s.Steals))
			}
			pad := prevLen - len(line)
			prevLen = len(line)
			if pad > 0 {
				line += strings.Repeat(" ", pad)
			}
			if s.Final {
				fmt.Fprintf(w, "\r%s\n", line)
				prevLen = 0
				return
			}
			fmt.Fprintf(w, "\r%s", line)
		},
	}
}

// countString humanizes a count: 1234 -> "1234", 56789 -> "56.8k",
// 1234567 -> "1.23M".
func countString(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// byteString humanizes a byte count at MB/GB granularity.
func byteString(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	default:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	}
}
