module guidedta

go 1.22
