// Package guidedta reproduces "Guided Synthesis of Control Programs Using
// UPPAAL" (Hune, Larsen, Pettersson; ICDCS 2000): scheduling a batch steel
// plant by zone-based reachability analysis of timed automata, making the
// search feasible by guiding the model with auxiliary variables and guards,
// and compiling the resulting diagnostic traces into distributed control
// programs that run on (a simulation of) the LEGO MINDSTORMS plant.
//
// The library lives under internal/:
//
//	internal/dbm      difference-bound matrices (zones)
//	internal/expr     the integer guard/assignment expression language
//	internal/ta       timed-automata networks
//	internal/mc       the model checker (BFS/DFS/bit-state hashing/min-time)
//	internal/plant    the SIDMAR batch plant model and its guides
//	internal/schedule trace-to-schedule projection (Table 2)
//	internal/rcx      RCX byte code and interpreter
//	internal/synth    schedule-to-control-program synthesis (Figure 6)
//	internal/sim      the simulated LEGO plant (Section 6)
//	internal/tadsl    a textual model format for the guidedmc tool
//	internal/core     the end-to-end pipeline facade (Figure 1)
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the measured results.
package guidedta
